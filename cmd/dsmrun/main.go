// Command dsmrun executes one of the paper's applications under one DSM
// protocol on the simulated cluster and prints the measured statistics.
//
// Usage:
//
//	dsmrun -app jacobi -proto bar-u -procs 8
//
// Observability flags: -json emits the full machine-readable report
// (including the per-epoch timeline) to stdout; -chrome-trace FILE streams
// the protocol events as a Chrome trace_event document loadable in
// Perfetto; -timeline prints the per-epoch statistics table; -pagestats N
// prints the N hottest pages; -trace N records up to N events (-trace-tail
// keeps the newest instead of the oldest when the cap overflows); -metrics
// FILE writes the run's final counter/histogram snapshot in Prometheus
// text format (- for stdout) — the same names cmd/dsmd serves live on
// /metrics.
//
// -check runs the differential conformance harness instead of a plain
// run: the chosen protocol (fault-injection flags included) is held
// bit-for-bit to the sequential baseline with the consistency oracle
// attached, and any divergence exits non-zero with a localized report.
//
// -transport selects the backend by internal/transport registry name:
// "sim" (the default discrete-event simulator) or a real backend —
// mem (in-process channels), udp (loopback datagrams), tcp (persistent
// streams). A real backend leaves the simulator entirely: the cluster
// runs on the wall-clock scheduler, every frame crosses the
// internal/wire codec, and elapsed time is measured rather than modeled
// — so the virtual-time sequential baseline, speedup, and -straggler do
// not apply. Combines with -check to hold the real runtime to the
// simulated baseline.
//
// -workers N shards the simulated kernel across N goroutines under
// conservative lookahead; results are bit-identical to the sequential
// kernel, only wall-clock time changes. Sim only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"godsm/internal/apps"
	"godsm/internal/check"
	"godsm/internal/core"
	"godsm/internal/kvload"
	"godsm/internal/metrics"
	"godsm/internal/netsim"
	"godsm/internal/obs"
	"godsm/internal/sim"
	"godsm/internal/trace"
	"godsm/internal/transport"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment abstracted, so tests can drive the
// full flag surface in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsmrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	appName := fs.String("app", "jacobi", "application: barnes expl fft jacobi shallow sor swm tomcat kv")
	protoName := fs.String("proto", "bar-u", "protocol: seq lmw-i lmw-u bar-i bar-u bar-s bar-m adaptive")
	procs := fs.Int("procs", 8, "cluster size")
	small := fs.Bool("small", false, "use the reduced application size")
	traceN := fs.Int("trace", 0, "record up to N protocol events and print a summary plus the last 40")
	traceTail := fs.Bool("trace-tail", false, "with -trace, keep the newest N events instead of the oldest")
	jsonOut := fs.Bool("json", false, "emit the machine-readable report (with per-epoch timeline) as JSON")
	chromePath := fs.String("chrome-trace", "", "write protocol events to `file` in Chrome trace_event format")
	timeline := fs.Bool("timeline", false, "print the per-epoch statistics table")
	pageStatsN := fs.Int("pagestats", 0, "print the N hottest pages by protocol activity")
	loss := fs.Float64("loss", 0, "fault injection: drop this fraction of remote packets")
	dup := fs.Float64("dup", 0, "fault injection: duplicate this fraction of remote packets")
	reorder := fs.Float64("reorder", 0, "fault injection: delay (reorder) this fraction of remote packets")
	delay := fs.Duration("delay", 0, "fault injection: maximum extra latency for -reorder (0 = 500µs); with -reorder 0, delay every packet by up to this")
	straggler := fs.String("straggler", "", "fault injection: slow one node, as node:factor[:fromEpoch[:toEpoch]]")
	crash := fs.String("crash", "", "fault injection: crash nodes at barriers, as node:epoch[:restartAfter] (comma-separated; restartAfter 0 restarts in place, omitted never restarts)")
	transportName := fs.String("transport", "", "transport backend: sim (the default simulator) or a real one — mem (in-process channels), udp (loopback datagrams), tcp (persistent streams)")
	workers := fs.Int("workers", 0, "sim only: drive the discrete-event kernel with N parallel shard workers (bit-identical results; -1 = GOMAXPROCS)")
	metricsPath := fs.String("metrics", "", "write the run's final metrics snapshot to `file` in Prometheus text format (- for stdout)")
	faultSeed := fs.Int64("fault-seed", 1, "seed for the fault-injection schedule")
	checkRun := fs.Bool("check", false, "differential conformance: hold this protocol (fault flags included) bit-for-bit to the sequential baseline under the consistency oracle")
	kvDef := apps.KVDefault()
	kvOps := fs.Int("kv-ops", kvDef.Ops, "kv: total operation budget across all streams and epochs")
	kvKeys := fs.Int("kv-keys", kvDef.Keys, "kv: key-space size")
	kvShards := fs.Int("kv-shards", kvDef.Shards, "kv: hash-shard count (>= -procs so every node owns a shard)")
	kvStreams := fs.Int("kv-streams", kvDef.Streams, "kv: open-loop request-stream count (fixed across cluster sizes)")
	kvDist := fs.String("kv-dist", kvDef.Dist.String(), "kv: key popularity: uniform, zipf=S, or hotset=FRAC/KEYS")
	kvMix := fs.String("kv-mix", "", "kv: request mix, e.g. write=0.2,scan=0.05,scanlen=16 (empty = default mix)")
	kvWrite := fs.Float64("kv-write", kvDef.Mix.Write, "kv: put fraction in [0,1] (shorthand for the -kv-mix write term)")
	kvEpochs := fs.Int("kv-epochs", kvDef.Measure, "kv: measured stats epochs")
	kvSeed := fs.Uint64("kv-seed", kvDef.Seed, "kv: traffic generator seed")
	kvStatsEvery := fs.Int("kv-stats-every", kvDef.StatsEvery, "kv: carry the cluster-wide op-counter reduction every N epochs")
	kvLocks := fs.Bool("kv-locks", false, "kv: bracket each shard's apply phase in per-shard locks (lmw protocols only)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Reject nonsensical configurations before running anything: a negative
	// loss rate, an inert straggler factor, or a probability above 1 would
	// otherwise be silently clamped or ignored by the fault injector, and
	// the run would measure something other than what was asked for.
	if *procs < 1 {
		fmt.Fprintf(stderr, "dsmrun: -procs %d: cluster needs at least 1 node\n", *procs)
		return 2
	}
	for _, p := range []struct {
		name string
		val  float64
	}{{"loss", *loss}, {"dup", *dup}, {"reorder", *reorder}} {
		if p.val < 0 || p.val > 1 {
			fmt.Fprintf(stderr, "dsmrun: -%s %g: must be a probability in [0, 1]\n", p.name, p.val)
			return 2
		}
	}
	if *delay < 0 {
		fmt.Fprintf(stderr, "dsmrun: -delay %v: extra latency cannot be negative\n", *delay)
		return 2
	}
	if *transportName != "" {
		e, ok := transport.Lookup(*transportName)
		if !ok {
			fmt.Fprintf(stderr, "dsmrun: -transport %q: unknown backend (have %s)\n",
				*transportName, strings.Join(transport.Names(), ", "))
			fs.Usage()
			return 2
		}
		if e.Virtual {
			*transportName = "" // "sim" is the default simulator
		}
	}
	if *workers != 0 && *transportName != "" {
		fmt.Fprintf(stderr, "dsmrun: -workers shards the simulated kernel; it cannot be combined with -transport %s\n",
			*transportName)
		return 2
	}
	if *metricsPath != "" && *checkRun {
		// The conformance harness builds its own configurations and ignores
		// RunOpts; the registry would come back empty, silently measuring
		// nothing.
		fmt.Fprintln(stderr, "dsmrun: -metrics cannot be combined with -check (the conformance harness ignores run options)")
		return 2
	}
	if *transportName != "" && *straggler != "" {
		// Stragglers multiply modeled compute time, which only exists under
		// the virtual clock; on a real transport the wall clock is measured,
		// not modeled, so the rule would silently do nothing.
		fmt.Fprintf(stderr, "dsmrun: -straggler only means something under the sim clock; it cannot be combined with -transport %s\n",
			*transportName)
		return 2
	}

	proto, err := core.ParseProtocol(*protoName)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *transportName != "" && proto == core.ProtoSeq {
		fmt.Fprintf(stderr, "dsmrun: -transport %s needs a parallel protocol; seq has no remote traffic\n", *transportName)
		return 2
	}
	if *crash != "" && proto == core.ProtoSeq {
		fmt.Fprintln(stderr, "dsmrun: -crash needs a DSM protocol; seq has no cluster to crash")
		return 2
	}
	// The kv flag surface only means something for -app kv; a kv knob on
	// a stencil run would silently measure something other than asked.
	kvFlagSet := false
	fs.Visit(func(f *flag.Flag) {
		if strings.HasPrefix(f.Name, "kv-") {
			kvFlagSet = true
		}
	})
	if kvFlagSet && *appName != "kv" {
		fmt.Fprintf(stderr, "dsmrun: -kv-* flags only apply to -app kv (got -app %s)\n", *appName)
		return 2
	}

	var reg *metrics.Registry
	if *metricsPath != "" {
		reg = metrics.New()
	}

	var app *apps.App
	if *appName == "kv" {
		// Nonsensical traffic parameters exit 2 before any run starts,
		// like the fault flags: a negative op budget, a fraction outside
		// [0,1] or a zipf exponent below zero would otherwise be rejected
		// deep in the workload builder (or worse, silently clamped).
		if *kvOps < 0 {
			fmt.Fprintf(stderr, "dsmrun: -kv-ops %d: the op budget cannot be negative\n", *kvOps)
			return 2
		}
		if *kvWrite < 0 || *kvWrite > 1 {
			fmt.Fprintf(stderr, "dsmrun: -kv-write %g: must be a fraction in [0, 1]\n", *kvWrite)
			return 2
		}
		if *kvShards < *procs {
			fmt.Fprintf(stderr, "dsmrun: -kv-shards %d: want at least one shard per node (-procs %d)\n", *kvShards, *procs)
			return 2
		}
		if *kvLocks && proto != core.ProtoLmwI && proto != core.ProtoLmwU && proto != core.ProtoSeq {
			fmt.Fprintf(stderr, "dsmrun: -kv-locks needs a homeless protocol (lmw-i, lmw-u); %v is barrier-only\n", proto)
			return 2
		}
		cfg := apps.KVDefault()
		if *small {
			cfg = apps.KVSmall()
		}
		// Explicitly-set flags override either base config; untouched
		// flags keep the -small/default values.
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "kv-ops":
				cfg.Ops = *kvOps
			case "kv-keys":
				cfg.Keys = *kvKeys
			case "kv-shards":
				cfg.Shards = *kvShards
			case "kv-streams":
				cfg.Streams = *kvStreams
			case "kv-epochs":
				cfg.Measure = *kvEpochs
			case "kv-seed":
				cfg.Seed = *kvSeed
			case "kv-stats-every":
				cfg.StatsEvery = *kvStatsEvery
			}
		})
		cfg.Locks = *kvLocks
		var err error
		if cfg.Dist, err = kvload.ParseDist(*kvDist); err != nil {
			fmt.Fprintf(stderr, "dsmrun: -kv-dist: %v\n", err)
			return 2
		}
		if cfg.Mix, err = kvload.ParseMix(*kvMix); err != nil {
			fmt.Fprintf(stderr, "dsmrun: -kv-mix: %v\n", err)
			return 2
		}
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "kv-write" {
				cfg.Mix.Write = *kvWrite
			}
		})
		cfg.Metrics = reg // godsm_kv_* series join the -metrics snapshot
		if app, err = apps.KV(cfg); err != nil {
			fmt.Fprintf(stderr, "dsmrun: %v\n", err)
			return 2
		}
	} else {
		list := apps.All()
		if *small {
			list = apps.Small()
		}
		for _, a := range list {
			if a.Name == *appName {
				app = a
			}
		}
		if app == nil {
			fmt.Fprintf(stderr, "dsmrun: unknown application %q (have %s)\n", *appName, strings.Join(apps.Names(), ", "))
			return 2
		}
	}

	opts := apps.RunOpts{
		Timeline:      *jsonOut || *timeline,
		PageStats:     *pageStatsN > 0,
		Transport:     *transportName,
		KernelWorkers: *workers,
		Metrics:       reg,
	}
	plan, err := buildFaultPlan(*loss, *dup, *reorder, *delay, *straggler, *crash, *faultSeed, *procs)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	opts.Faults = plan

	if *checkRun {
		if plan != nil {
			for _, cr := range plan.Crashes {
				if cr.RestartAfter != 0 {
					// A node dead for a window (or forever) drains its epochs
					// behind the survivors, so epoch counts and checksums
					// legitimately diverge from the sequential baseline; only
					// an in-place restart is differential-checkable.
					fmt.Fprintf(stderr, "dsmrun: -check requires in-place restarts; -crash %d:%d has restartAfter %d (want 0)\n",
						cr.Node, cr.Epoch, cr.RestartAfter)
					return 2
				}
			}
		}
		return runCheck(stdout, stderr, app, proto, *procs, plan, *transportName, *workers)
	}

	var log *trace.Log
	if *traceN > 0 {
		if *traceTail {
			log = trace.NewTail(*traceN)
		} else {
			log = trace.New(*traceN)
		}
		opts.Trace = log
	}
	var chrome *obs.ChromeSink
	if *chromePath != "" {
		f, err := os.Create(*chromePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		chrome = obs.NewChromeSink(f)
		opts.Sinks = append(opts.Sinks, chrome)
	}

	// The sequential baseline is a virtual-time measurement; over a real
	// transport the run is timed by the wall clock, so a speedup against it
	// would compare incommensurable units. Skip it.
	var seq *core.Report
	if *transportName == "" {
		if seq, err = app.RunSeq(nil); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	var rep *core.Report
	if proto == core.ProtoSeq {
		if opts.Trace == nil && opts.Sinks == nil && !opts.Timeline && !opts.PageStats && opts.Metrics == nil {
			rep = seq
		} else {
			rep, err = app.RunSeqWith(opts)
		}
	} else {
		rep, err = app.RunWith(*procs, proto, opts)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		if log != nil {
			for _, e := range log.Tail(80) {
				fmt.Fprintln(stderr, "   ", e)
			}
		}
		return 1
	}
	if chrome != nil {
		if err := chrome.Close(); err != nil {
			fmt.Fprintf(stderr, "dsmrun: chrome trace: %v\n", err)
			return 1
		}
	}
	if reg != nil {
		if err := writeMetrics(*metricsPath, reg, stdout); err != nil {
			fmt.Fprintf(stderr, "dsmrun: metrics: %v\n", err)
			return 1
		}
	}

	if *jsonOut {
		return printJSON(stdout, stderr, app, rep, seq)
	}
	printReport(stdout, app, rep, seq)
	if *timeline && rep.Timeline != nil {
		fmt.Fprintf(stdout, "\n  per-epoch timeline (%d epochs):\n", len(rep.Timeline.Epochs))
		rep.Timeline.WriteTable(stdout)
	}
	if *pageStatsN > 0 && rep.PageStats != nil {
		fmt.Fprintf(stdout, "\n  hottest pages:\n")
		rep.PageStats.WriteTop(stdout, *pageStatsN)
	}
	if log != nil {
		mode := "oldest kept"
		if *traceTail {
			mode = "newest kept"
		}
		fmt.Fprintf(stdout, "\n  protocol event summary (%d recorded, %d dropped, %s):\n",
			len(log.Events()), log.Dropped(), mode)
		log.WriteSummary(stdout)
		ev := log.Tail(40)
		fmt.Fprintln(stdout, "\n  last events:")
		for _, e := range ev {
			fmt.Fprintln(stdout, "   ", e)
		}
	}
	return 0
}

// writeMetrics dumps the registry's final snapshot in Prometheus text
// exposition format, to stdout for "-" or to the named file.
func writeMetrics(path string, reg *metrics.Registry, stdout io.Writer) error {
	if path == "-" {
		return reg.WritePrometheus(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runCheck executes the -check mode: the differential conformance harness
// over exactly the requested protocol, fault-free plus (when fault flags
// are set) the requested plan.
func runCheck(stdout, stderr io.Writer, app *apps.App, proto core.ProtocolKind, procs int, plan *netsim.FaultPlan, transportName string, workers int) int {
	if proto == core.ProtoSeq {
		fmt.Fprintln(stderr, "dsmrun: -check holds a protocol to the sequential baseline; -proto seq is the baseline itself")
		return 2
	}
	if app.Dynamic && (proto == core.ProtoBarS || proto == core.ProtoBarM) {
		fmt.Fprintf(stderr, "dsmrun: %s has a dynamic sharing pattern; %v would abort (the paper excludes it)\n", app.Name, proto)
		return 2
	}
	copts := check.Options{
		Procs:         procs,
		SegmentBytes:  app.SegmentBytes,
		Protocols:     []core.ProtocolKind{proto},
		Transport:     transportName,
		KernelWorkers: workers,
	}
	if plan != nil {
		copts.Plans = []*netsim.FaultPlan{plan}
	}
	res, err := check.Differential(app.Body, copts)
	if err != nil {
		fmt.Fprintf(stderr, "dsmrun: %v\n", err)
		if res != nil && res.Report != "" {
			fmt.Fprintln(stderr, res.Report)
		}
		return 1
	}
	over := ""
	if transportName != "" {
		over = " over " + transportName
	}
	fmt.Fprintf(stdout, "conformance: %s under %v%s, %d procs: %d runs bit-identical to the sequential baseline\n",
		app.Name, proto, over, procs, len(res.Runs))
	for _, run := range res.Runs {
		fmt.Fprintf(stdout, "  %-6v %-12s checksum %#016x  epochs %d  benign same-word writes %d\n",
			run.Protocol, run.Variant, run.Checksum, run.Epochs, run.Benign)
	}
	return 0
}

// buildFaultPlan assembles a netsim.FaultPlan from the fault-injection
// flags; nil when every knob is off.
func buildFaultPlan(loss, dup, reorder float64, delay time.Duration, straggler, crash string, seed int64, procs int) (*netsim.FaultPlan, error) {
	if loss == 0 && dup == 0 && reorder == 0 && delay == 0 && straggler == "" && crash == "" {
		return nil, nil
	}
	plan := &netsim.FaultPlan{Seed: seed}
	if loss > 0 || dup > 0 || reorder > 0 || delay > 0 {
		if reorder == 0 && delay > 0 {
			// -delay alone means "add latency to every packet".
			reorder = 1
		}
		plan.Rules = append(plan.Rules, netsim.FaultRule{
			From:    netsim.AnyNode,
			To:      netsim.AnyNode,
			Drop:    loss,
			Dup:     dup,
			Reorder: reorder,
			Delay:   sim.Duration(delay.Nanoseconds()),
		})
	}
	if straggler != "" {
		sr, err := parseStraggler(straggler, procs)
		if err != nil {
			return nil, err
		}
		plan.Stragglers = append(plan.Stragglers, sr)
	}
	if crash != "" {
		rules, err := parseCrashes(crash, procs)
		if err != nil {
			return nil, err
		}
		plan.Crashes = rules
	}
	return plan, nil
}

// parseCrashes parses and validates the -crash schedule: comma-separated
// node:epoch[:restartAfter] rules. The same schedules the engine would
// reject (config.validateCrashes) are errors here so a bad flag exits 2
// before any run starts; restartAfter must be >= 0 when given (omitting
// it means the node never restarts — there is no separate sentinel).
func parseCrashes(s string, procs int) ([]netsim.CrashRule, error) {
	var rules []netsim.CrashRule
	seen := make(map[int]bool)
	for _, one := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(one), ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("dsmrun: -crash wants node:epoch[:restartAfter], got %q", one)
		}
		node, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("dsmrun: -crash node: %v", err)
		}
		if node == 0 {
			return nil, fmt.Errorf("dsmrun: -crash node 0: node 0 hosts the barrier manager and the reduction root; it cannot crash")
		}
		if node < 1 || node >= procs {
			return nil, fmt.Errorf("dsmrun: -crash node %d: cluster has nodes 0..%d (and node 0 cannot crash)", node, procs-1)
		}
		if seen[node] {
			return nil, fmt.Errorf("dsmrun: -crash node %d appears twice; one rule per node", node)
		}
		seen[node] = true
		epoch, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("dsmrun: -crash epoch: %v", err)
		}
		if epoch < 1 {
			return nil, fmt.Errorf("dsmrun: -crash epoch %d: the first crashable barrier is epoch 1 (epoch 0 is initialization)", epoch)
		}
		rule := netsim.CrashRule{Node: node, Epoch: epoch, RestartAfter: -1}
		if len(parts) == 3 {
			restart, err := strconv.Atoi(parts[2])
			if err != nil {
				return nil, fmt.Errorf("dsmrun: -crash restartAfter: %v", err)
			}
			if restart < 0 {
				return nil, fmt.Errorf("dsmrun: -crash restartAfter %d: must be >= 0 (omit the field for a node that never restarts)", restart)
			}
			rule.RestartAfter = restart
		}
		rules = append(rules, rule)
	}
	return rules, nil
}

// parseStraggler parses and validates "node:factor[:fromEpoch[:toEpoch]]".
// A rule the injector would silently ignore — a factor at or below 1, or a
// node outside the cluster — is an error, not a no-op run.
func parseStraggler(s string, procs int) (netsim.StragglerRule, error) {
	var sr netsim.StragglerRule
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 4 {
		return sr, fmt.Errorf("dsmrun: -straggler wants node:factor[:fromEpoch[:toEpoch]], got %q", s)
	}
	node, err := strconv.Atoi(parts[0])
	if err != nil {
		return sr, fmt.Errorf("dsmrun: -straggler node: %v", err)
	}
	if node != netsim.AnyNode && (node < 0 || node >= procs) {
		return sr, fmt.Errorf("dsmrun: -straggler node %d: cluster has nodes 0..%d (or %d for all)",
			node, procs-1, netsim.AnyNode)
	}
	factor, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return sr, fmt.Errorf("dsmrun: -straggler factor: %v", err)
	}
	if factor <= 1 {
		return sr, fmt.Errorf("dsmrun: -straggler factor %g: must exceed 1 (it multiplies compute time; the injector ignores smaller values)", factor)
	}
	sr = netsim.StragglerRule{Node: node, Factor: factor}
	if len(parts) >= 3 {
		if sr.FromEpoch, err = strconv.Atoi(parts[2]); err != nil {
			return sr, fmt.Errorf("dsmrun: -straggler fromEpoch: %v", err)
		}
		if sr.FromEpoch < 0 {
			return sr, fmt.Errorf("dsmrun: -straggler fromEpoch %d: epochs start at 0", sr.FromEpoch)
		}
	}
	if len(parts) == 4 {
		if sr.ToEpoch, err = strconv.Atoi(parts[3]); err != nil {
			return sr, fmt.Errorf("dsmrun: -straggler toEpoch: %v", err)
		}
		if sr.ToEpoch != 0 && sr.ToEpoch < sr.FromEpoch {
			return sr, fmt.Errorf("dsmrun: -straggler window [%d, %d] is empty: toEpoch must be 0 (open) or at least fromEpoch",
				sr.FromEpoch, sr.ToEpoch)
		}
	}
	return sr, nil
}

// jsonReport is the -json document: the run's Report (timeline included)
// plus the sequential baseline and derived speedup.
type jsonReport struct {
	App        string
	SeqElapsed sim.Duration
	Speedup    float64
	*core.Report
}

func printJSON(stdout, stderr io.Writer, app *apps.App, rep, seq *core.Report) int {
	doc := jsonReport{App: app.Name, Report: rep}
	if seq != nil {
		doc.SeqElapsed = seq.Elapsed
		doc.Speedup = rep.Speedup(seq.Elapsed)
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	err := enc.Encode(doc)
	if err != nil {
		fmt.Fprintf(stderr, "dsmrun: json: %v\n", err)
		return 1
	}
	return 0
}

func printReport(w io.Writer, app *apps.App, r, seq *core.Report) {
	fmt.Fprintf(w, "%s under %s, %d procs\n", app.Name, r.Protocol, r.Procs)
	fmt.Fprintf(w, "  %s\n\n", app.Description)
	if seq != nil {
		fmt.Fprintf(w, "  elapsed (measured)   %v\n", r.Elapsed)
		fmt.Fprintf(w, "  sequential baseline  %v\n", seq.Elapsed)
		fmt.Fprintf(w, "  speedup              %.2f\n", r.Speedup(seq.Elapsed))
	} else {
		fmt.Fprintf(w, "  elapsed (wall clock) %v\n", r.Elapsed)
	}
	fmt.Fprintf(w, "  checksum             %#016x\n\n", r.Checksum)
	t := r.Total
	fmt.Fprintf(w, "  diffs %d (empty %d)  remote misses %d  page fetches %d  diff fetches %d\n",
		t.Diffs, t.EmptyDiffs, t.RemoteMisses, t.PageFetches, t.DiffFetches)
	fmt.Fprintf(w, "  messages %d  replies %d  data %d KB\n", t.Messages, t.Replies, t.DataBytes/1024)
	fmt.Fprintf(w, "  segvs %d  mprotects %d  twins %d\n", t.Segvs, t.Mprotects, t.Twins)
	fmt.Fprintf(w, "  updates sent %d (unneeded %d)  diffs stored %d  migrations %d  barriers %d\n",
		t.UpdatesSent, t.UpdatesUnneeded, t.DiffsStored, t.HomeMigrations, t.Barriers)
	if t.NetDrops+t.NetDups+t.NetDelays+t.Retransmits+t.DupSuppressed > 0 {
		fmt.Fprintf(w, "  faults: drops %d  dups %d  delays %d  retransmits %d  dups suppressed %d\n",
			t.NetDrops, t.NetDups, t.NetDelays, t.Retransmits, t.DupSuppressed)
	}
	if t.StaleSkips+t.StaleRefetches > 0 {
		fmt.Fprintf(w, "  overdrive: stale skips %d  stale refetches %d\n", t.StaleSkips, t.StaleRefetches)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  time breakdown per node (app/os/sigio/wait):\n")
	for i, bd := range r.Breakdowns {
		af, of, sf, wf := bd.Fractions()
		fmt.Fprintf(w, "    node %d: %5.1f%% %5.1f%% %5.1f%% %5.1f%%\n", i, af*100, of*100, sf*100, wf*100)
	}
}
