// Command dsmd is the DSM-as-a-service control plane: a long-running
// HTTP server that multiplexes concurrent simulation sessions over a
// bounded worker pool and streams their telemetry live.
//
// API (see EXPERIMENTS.md for the full walkthrough):
//
//	POST   /v1/runs              launch a run (app, proto, procs, faults, ...)
//	GET    /v1/runs              list sessions
//	GET    /v1/runs/{id}         session status, final report included
//	DELETE /v1/runs/{id}         cancel a queued or running session
//	PATCH  /v1/runs/{id}/faults  swap a running session's fault rules live
//	GET    /v1/runs/{id}/events  SSE trace-event stream (?kinds=, ?buffer=)
//	GET    /metrics              Prometheus text exposition
//	GET    /healthz              liveness probe
//	/debug/pprof/*               Go profiling endpoints (with -pprof)
//
// Every /v1 failure carries the uniform JSON error envelope
// {"error": {"code": "<slug>", "message": "<text>"}} with the same
// status codes as before; the flat {"error": "<text>"} body is
// deprecated and no longer emitted.
//
// Finished sessions are retained until -session-ttl elapses or the
// -max-sessions cap evicts the oldest; an expired id thereafter 404s.
//
// SIGINT/SIGTERM drains: new launches get 503, in-flight sessions run to
// completion up to -drain-timeout, stragglers are cancelled, then the
// server exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment abstracted: tests drive the whole
// server lifecycle in-process, cancelling ctx where a signal would land.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsmd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 0, "concurrent simulation runs (0 = GOMAXPROCS)")
	queue := fs.Int("max-queued", 16, "runs accepted but not yet started before POST /v1/runs returns 429")
	traceCap := fs.Int("trace-cap", 4096, "per-session event ring: the replay window a late SSE subscriber gets")
	pprofOn := fs.Bool("pprof", false, "mount /debug/pprof profiling endpoints")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a shutdown waits for in-flight runs before cancelling them")
	sessionTTL := fs.Duration("session-ttl", 0, "expire finished sessions this long after they finish (0 = keep forever)")
	maxSessions := fs.Int("max-sessions", 0, "retained-session cap; past it the oldest finished sessions are evicted (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *queue < 0 {
		fmt.Fprintf(stderr, "dsmd: -max-queued %d: cannot be negative\n", *queue)
		return 2
	}
	if *traceCap < 1 {
		fmt.Fprintf(stderr, "dsmd: -trace-cap %d: the event ring needs at least one slot\n", *traceCap)
		return 2
	}
	if *drainTimeout < 0 {
		fmt.Fprintf(stderr, "dsmd: -drain-timeout %v: cannot be negative\n", *drainTimeout)
		return 2
	}
	if *sessionTTL < 0 {
		fmt.Fprintf(stderr, "dsmd: -session-ttl %v: cannot be negative\n", *sessionTTL)
		return 2
	}
	if *maxSessions < 0 {
		fmt.Fprintf(stderr, "dsmd: -max-sessions %d: cannot be negative\n", *maxSessions)
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "dsmd: %v\n", err)
		return 1
	}
	srv := newServer(config{
		workers:     *workers,
		queueCap:    *queue,
		traceCap:    *traceCap,
		pprofOn:     *pprofOn,
		sessionTTL:  *sessionTTL,
		maxSessions: *maxSessions,
	})
	hs := &http.Server{Handler: srv.handler()}
	fmt.Fprintf(stdout, "dsmd listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "dsmd: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintf(stdout, "dsmd: draining (up to %v)...\n", *drainTimeout)
	if cancelled := srv.drain(*drainTimeout); len(cancelled) > 0 {
		fmt.Fprintf(stdout, "dsmd: cancelled %d unfinished runs: %v\n", len(cancelled), cancelled)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		_ = hs.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "dsmd: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "dsmd: bye")
	return 0
}
