package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"godsm/internal/apps"
	"godsm/internal/core"
)

func newTestServer(t *testing.T, cfg config) (*server, *httptest.Server) {
	t.Helper()
	srv := newServer(cfg)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// launch POSTs a run request and decodes the accepted session document.
func launch(t *testing.T, ts *httptest.Server, req runRequest) sessionDoc {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]errorBody
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST /v1/runs: %d: %s: %s", resp.StatusCode, e["error"].Code, e["error"].Message)
	}
	var doc sessionDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// getDoc fetches a session's raw status document.
func getDoc(t *testing.T, ts *httptest.Server, id string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// waitState polls a session until it reaches a terminal state.
func waitState(t *testing.T, ts *httptest.Server, id string) sessionDoc {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		code, body := getDoc(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("GET /v1/runs/%s: %d: %s", id, code, body)
		}
		var doc sessionDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatal(err)
		}
		switch doc.State {
		case stateDone, stateError, stateCancelled:
			return doc
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s stuck in state %s", id, doc.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// readSSE consumes a session's event stream until the done event,
// returning the trace events and the done-event session document.
func readSSE(t *testing.T, ts *httptest.Server, id, query string) ([]sseEvent, sessionDoc) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/events" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	var (
		events []sseEvent
		final  sessionDoc
		event  string
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := []byte(strings.TrimPrefix(line, "data: "))
			switch event {
			case "trace":
				var e sseEvent
				if err := json.Unmarshal(data, &e); err != nil {
					t.Fatalf("bad trace event %q: %v", data, err)
				}
				events = append(events, e)
			case "done":
				if err := json.Unmarshal(data, &final); err != nil {
					t.Fatalf("bad done event %q: %v", data, err)
				}
				return events, final
			}
		}
	}
	t.Fatalf("SSE stream ended without a done event (%v)", sc.Err())
	return nil, final
}

// TestE2ESimRun is the control plane's end-to-end check: launch a
// simulated run over HTTP, tail its SSE stream to completion, and hold
// the streamed epoch count and the final report to what a direct
// in-process run of the same configuration produces.
func TestE2ESimRun(t *testing.T) {
	_, ts := newTestServer(t, config{workers: 2, queueCap: 8, traceCap: 1 << 16})
	doc := launch(t, ts, runRequest{App: "jacobi", Proto: "bar-u", Procs: 4, Small: true, Timeline: true})
	if doc.State != stateQueued && doc.State != stateRunning {
		t.Fatalf("launch state = %s", doc.State)
	}

	events, final := readSSE(t, ts, doc.ID, "?kinds=bar-release")
	if final.State != stateDone {
		t.Fatalf("final state = %s (error %q)", final.State, final.Error)
	}
	node0 := 0
	for _, e := range events {
		if e.Kind != "bar-release" {
			t.Fatalf("kind filter leaked a %q event", e.Kind)
		}
		if e.Node == 0 {
			node0++
		}
	}

	code, body := getDoc(t, ts, doc.ID)
	if code != http.StatusOK {
		t.Fatalf("GET: %d", code)
	}
	var full struct {
		Epochs int          `json:"epochs"`
		Report *core.Report `json:"report"`
	}
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}
	if full.Report == nil || full.Report.Timeline == nil {
		t.Fatal("status document is missing the timeline report")
	}
	if got := len(full.Report.Timeline.Epochs); node0 != got || full.Epochs != got {
		t.Fatalf("node-0 bar-release events = %d, epochs field = %d, timeline epochs = %d; want all equal",
			node0, full.Epochs, got)
	}

	// The same configuration run directly must produce a bit-identical
	// report: the server adds observers, never behaviour.
	app := appByName(t, "jacobi", true)
	direct, err := app.RunWith(4, core.ProtoBarU, apps.RunOpts{Timeline: true})
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(full.Report)
	wantJSON, _ := json.Marshal(direct)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("server report diverges from a direct run\nserver: %.300s\ndirect: %.300s", gotJSON, wantJSON)
	}
}

func appByName(t *testing.T, name string, small bool) *apps.App {
	t.Helper()
	list := apps.All()
	if small {
		list = apps.Small()
	}
	for _, a := range list {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no app %q", name)
	return nil
}

// TestMetricsExposition launches one sim run and one mem-transport run
// and checks /metrics exposes non-zero core and transport counters.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, config{workers: 2, queueCap: 8})
	a := launch(t, ts, runRequest{App: "jacobi", Proto: "bar-u", Procs: 4, Small: true})
	b := launch(t, ts, runRequest{App: "jacobi", Proto: "bar-u", Procs: 2, Small: true, Transport: "mem"})
	waitState(t, ts, a.ID)
	waitState(t, ts, b.ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`godsm_runs_total{protocol="bar-u",status="ok"} 2`,
		`godsm_messages_total{protocol="bar-u"}`,
		`godsm_transport_frames_sent_total{backend="mem"}`,
		`godsm_sweep_jobs_total{outcome="accepted"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	for _, zero := range []string{
		`godsm_messages_total{protocol="bar-u"} 0`,
		`godsm_transport_frames_sent_total{backend="mem"} 0`,
	} {
		if strings.Contains(out, zero) {
			t.Errorf("/metrics counter unexpectedly zero: %q", zero)
		}
	}
}

// TestCancelMidRun aborts a full-size run mid-flight over the API.
func TestCancelMidRun(t *testing.T) {
	_, ts := newTestServer(t, config{workers: 1, queueCap: 4})
	doc := launch(t, ts, runRequest{App: "barnes", Proto: "bar-u", Procs: 8})

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+doc.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: %d", resp.StatusCode)
	}
	final := waitState(t, ts, doc.ID)
	if final.State != stateCancelled {
		t.Fatalf("state after cancel = %s (error %q)", final.State, final.Error)
	}
	if final.Report != nil {
		t.Fatal("cancelled run produced a report")
	}
	// The SSE stream of a cancelled session still terminates with done.
	_, sseFinal := readSSE(t, ts, doc.ID, "?kinds=bar-release")
	if sseFinal.State != stateCancelled {
		t.Fatalf("SSE done state = %s", sseFinal.State)
	}
}

// TestSlowSubscriberDrops pins the drop policy at the session layer: a
// subscriber that never drains its one-slot buffer loses events instead
// of stalling the run.
func TestSlowSubscriberDrops(t *testing.T) {
	srv, ts := newTestServer(t, config{workers: 1, queueCap: 4, traceCap: 16})
	// Park the only worker on a gate job so the session stays queued —
	// FIFO order guarantees it cannot emit anything until the gate opens,
	// after the one-slot subscription is attached.
	gate := make(chan struct{})
	if err := srv.pool.TrySubmit(func() error { <-gate; return nil }, func(error) {}); err != nil {
		t.Fatal(err)
	}
	b := launch(t, ts, runRequest{App: "jacobi", Proto: "bar-u", Procs: 2, Small: true})
	sub := srv.lookup(b.ID).bcast.Subscribe(1)
	close(gate)
	waitState(t, ts, b.ID)
	if got := sub.Dropped(); got == 0 {
		t.Fatal("undrained subscriber dropped nothing; the run should out-emit a 1-slot buffer")
	}
}

// TestUnknownRunID covers the 404 surface.
func TestUnknownRunID(t *testing.T) {
	_, ts := newTestServer(t, config{workers: 1, queueCap: 1})
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/runs/nope"},
		{http.MethodDelete, "/v1/runs/nope"},
		{http.MethodGet, "/v1/runs/nope/events"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}
}

// TestLaunchValidation covers the 400 surface: requests the engine would
// reject or silently misread fail up front.
func TestLaunchValidation(t *testing.T) {
	_, ts := newTestServer(t, config{workers: 1, queueCap: 1})
	cases := []struct {
		name string
		body string
	}{
		{"unknown app", `{"app":"nope","proto":"bar-u"}`},
		{"unknown proto", `{"app":"jacobi","proto":"bar-x"}`},
		{"dynamic app under overdrive", `{"app":"barnes","proto":"bar-s"}`},
		{"seq over transport", `{"app":"jacobi","proto":"seq","transport":"mem"}`},
		{"unknown transport", `{"app":"jacobi","proto":"bar-u","transport":"rdma"}`},
		{"loss above 1", `{"app":"jacobi","proto":"bar-u","faults":{"loss":1.5}}`},
		{"negative delay", `{"app":"jacobi","proto":"bar-u","faults":{"delay_ns":-1}}`},
		{"unknown field", `{"app":"jacobi","proto":"bar-u","bogus":1}`},
		{"negative procs", `{"app":"jacobi","proto":"bar-u","procs":-2}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", tc.name, resp.StatusCode)
		}
	}
	// Bad SSE parameters are 400s too, against a real session.
	doc := launch(t, ts, runRequest{App: "jacobi", Proto: "bar-u", Procs: 2, Small: true})
	waitState(t, ts, doc.ID)
	for _, q := range []string{"?kinds=bogus", "?buffer=0", "?buffer=x"} {
		resp, err := http.Get(ts.URL + "/v1/runs/" + doc.ID + "/events" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("events%s: %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestCrashPlanRun launches a session whose fault plan crashes a node
// mid-run and restarts it in place: the session completes cleanly and
// the report carries the recovery counters.
func TestCrashPlanRun(t *testing.T) {
	restart := 0
	_, ts := newTestServer(t, config{workers: 1, queueCap: 1})
	doc := launch(t, ts, runRequest{
		App: "jacobi", Proto: "bar-u", Procs: 4, Small: true,
		Faults: &faultRequest{Crashes: []crashRequest{{Node: 2, Epoch: 3, RestartAfter: &restart}}},
	})
	final := waitState(t, ts, doc.ID)
	if final.State != stateDone {
		t.Fatalf("crash-plan run: %s (error %q)", final.State, final.Error)
	}
	code, body := getDoc(t, ts, doc.ID)
	if code != http.StatusOK {
		t.Fatalf("GET: %d", code)
	}
	var full struct {
		Report *core.Report `json:"report"`
	}
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}
	if full.Report.Total.Crashes != 1 || full.Report.Total.Restarts != 1 {
		t.Fatalf("crash counters = %d/%d, want 1/1",
			full.Report.Total.Crashes, full.Report.Total.Restarts)
	}
	if full.Report.Total.CheckpointBytes == 0 {
		t.Fatal("recovery ran but no checkpoint bytes are accounted")
	}
}

// TestCrashPlanValidation covers the 400 surface of launch-time crash
// rules, mirroring dsmrun's -crash validation.
func TestCrashPlanValidation(t *testing.T) {
	_, ts := newTestServer(t, config{workers: 1, queueCap: 1})
	cases := []struct {
		name string
		body string
	}{
		{"node zero", `{"app":"jacobi","proto":"bar-u","procs":4,"faults":{"crashes":[{"node":0,"epoch":3}]}}`},
		{"node out of range", `{"app":"jacobi","proto":"bar-u","procs":4,"faults":{"crashes":[{"node":4,"epoch":3}]}}`},
		{"epoch zero", `{"app":"jacobi","proto":"bar-u","procs":4,"faults":{"crashes":[{"node":2,"epoch":0}]}}`},
		{"duplicate node", `{"app":"jacobi","proto":"bar-u","procs":4,"faults":{"crashes":[{"node":2,"epoch":3},{"node":2,"epoch":5}]}}`},
		{"negative restart", `{"app":"jacobi","proto":"bar-u","procs":4,"faults":{"crashes":[{"node":2,"epoch":3,"restart_after":-1}]}}`},
		{"crash under seq", `{"app":"jacobi","proto":"seq","faults":{"crashes":[{"node":1,"epoch":3}]}}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// patchFaults PATCHes a session's fault rules and returns the status
// code plus response body.
func patchFaults(t *testing.T, ts *httptest.Server, id, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPatch, ts.URL+"/v1/runs/"+id+"/faults", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestPatchFaultsLive drives the live fault toggle end to end: a running
// session launched with an armed fault plan accepts new rules mid-run,
// rejects crash additions and malformed knobs, and refuses the toggle
// once finished. Unknown ids 404.
func TestPatchFaultsLive(t *testing.T) {
	_, ts := newTestServer(t, config{workers: 1, queueCap: 4})

	if code, _ := patchFaults(t, ts, "nope", `{"loss":0.1}`); code != http.StatusNotFound {
		t.Fatalf("PATCH unknown id: %d, want 404", code)
	}

	// Full-size barnes stays in flight for seconds, so every PATCH below
	// lands mid-run; the armed (if quiet) launch plan is what makes live
	// swaps possible.
	doc := launch(t, ts, runRequest{
		App: "barnes", Proto: "bar-u", Procs: 8,
		Faults: &faultRequest{Loss: 0.01, Seed: 7},
	})
	deadline := time.Now().Add(time.Minute)
	for {
		code, body := patchFaults(t, ts, doc.ID, `{"loss":0.2,"dup":0.05}`)
		if code == http.StatusOK {
			break
		}
		// 409 while the session is still queued or assembling its cluster.
		if code != http.StatusConflict || time.Now().After(deadline) {
			t.Fatalf("PATCH live swap: %d: %s", code, body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if code, body := patchFaults(t, ts, doc.ID, `{"loss":1.5}`); code != http.StatusBadRequest {
		t.Fatalf("PATCH loss 1.5: %d: %s", code, body)
	}
	if code, body := patchFaults(t, ts, doc.ID, `{"bogus":1}`); code != http.StatusBadRequest {
		t.Fatalf("PATCH unknown field: %d: %s", code, body)
	}
	code, body := patchFaults(t, ts, doc.ID, `{"crashes":[{"node":2,"epoch":3}]}`)
	if code != http.StatusConflict || !strings.Contains(string(body), "crash rules") {
		t.Fatalf("PATCH crash addition: %d: %s", code, body)
	}

	// Clearing the rules mid-run is a valid swap too.
	if code, body := patchFaults(t, ts, doc.ID, `{}`); code != http.StatusOK {
		t.Fatalf("PATCH clear rules: %d: %s", code, body)
	}

	final := waitState(t, ts, doc.ID)
	if final.State != stateDone {
		t.Fatalf("patched run: %s (error %q)", final.State, final.Error)
	}
	if code, body := patchFaults(t, ts, doc.ID, `{"loss":0.1}`); code != http.StatusConflict {
		t.Fatalf("PATCH finished session: %d: %s", code, body)
	}
}

// TestPatchFaultsUnarmed: a session launched without any fault plan has
// no injector to swap; the PATCH is a 409, not a crash.
func TestPatchFaultsUnarmed(t *testing.T) {
	_, ts := newTestServer(t, config{workers: 1, queueCap: 4})
	doc := launch(t, ts, runRequest{App: "barnes", Proto: "bar-u", Procs: 8})
	deadline := time.Now().Add(time.Minute)
	for {
		code, body := patchFaults(t, ts, doc.ID, `{"loss":0.2}`)
		if code == http.StatusConflict && strings.Contains(string(body), "not armed") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("PATCH unarmed session: %d: %s", code, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+doc.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	waitState(t, ts, doc.ID)
}

// TestSessionGC drives the retention sweep: finished sessions expire
// past the TTL (and thereafter 404), the count cap evicts oldest-first,
// live sessions are never evicted, and the eviction counter moves.
func TestSessionGC(t *testing.T) {
	srv, ts := newTestServer(t, config{
		workers: 2, queueCap: 8,
		sessionTTL: 50 * time.Millisecond,
		sweepEvery: 10 * time.Millisecond,
	})
	doc := launch(t, ts, runRequest{App: "jacobi", Proto: "bar-u", Procs: 2, Small: true})
	waitState(t, ts, doc.ID)

	deadline := time.Now().Add(time.Minute)
	for {
		code, _ := getDoc(t, ts, doc.ID)
		if code == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s still resolvable long past its TTL", doc.ID)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.sessionsExpired.Value(); got != 1 {
		t.Fatalf("sessions-expired counter = %d, want 1", got)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "godsm_dsmd_sessions_expired 1") {
		t.Errorf("/metrics missing the eviction counter:\n%.2000s", buf.String())
	}
}

// TestSessionGCCountCap exercises the cap half of the sweep directly
// (deterministic clock): oldest finished sessions go first, live ones
// are immune even when the table is over the cap.
func TestSessionGCCountCap(t *testing.T) {
	srv, ts := newTestServer(t, config{workers: 2, queueCap: 8, maxSessions: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		doc := launch(t, ts, runRequest{App: "jacobi", Proto: "bar-u", Procs: 2, Small: true})
		waitState(t, ts, doc.ID)
		ids = append(ids, doc.ID)
	}
	if got := srv.sweepExpired(time.Now()); got != 1 {
		t.Fatalf("sweep evicted %d sessions, want 1", got)
	}
	if code, _ := getDoc(t, ts, ids[0]); code != http.StatusNotFound {
		t.Errorf("oldest session survived the cap sweep: %d", code)
	}
	for _, id := range ids[1:] {
		if code, _ := getDoc(t, ts, id); code != http.StatusOK {
			t.Errorf("session %s evicted though under the cap: %d", id, code)
		}
	}

	// A live session over the cap is untouchable: park the pool on a
	// gate so a fourth session stays queued, then sweep.
	gate := make(chan struct{})
	if err := srv.pool.TrySubmit(func() error { <-gate; return nil }, func(error) {}); err != nil {
		t.Fatal(err)
	}
	if err := srv.pool.TrySubmit(func() error { <-gate; return nil }, func(error) {}); err != nil {
		t.Fatal(err)
	}
	live := launch(t, ts, runRequest{App: "jacobi", Proto: "bar-u", Procs: 2, Small: true})
	if got := srv.sweepExpired(time.Now()); got != 1 {
		t.Fatalf("second sweep evicted %d sessions, want 1 (the older finished one)", got)
	}
	if code, _ := getDoc(t, ts, live.ID); code != http.StatusOK {
		t.Errorf("queued session evicted by the cap sweep: %d", code)
	}
	close(gate)
	waitState(t, ts, live.ID)
}

// TestSaturation turns a full pool into 429, not queuing.
func TestSaturation(t *testing.T) {
	_, ts := newTestServer(t, config{workers: 1, queueCap: 0})
	doc := launch(t, ts, runRequest{App: "barnes", Proto: "bar-u", Procs: 8}) // full-size barnes: reliably stays busy

	body := `{"app":"jacobi","proto":"bar-u","procs":2,"small":true}`
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated launch: %d, want 429", resp.StatusCode)
	}
	// The refused launch must not leave a ghost session behind.
	listResp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Runs []sessionDoc `json:"runs"`
	}
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	listResp.Body.Close()
	if len(list.Runs) != 1 || list.Runs[0].ID != doc.ID {
		t.Fatalf("session list after refusal: %+v", list.Runs)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+doc.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	waitState(t, ts, doc.ID)
}

// TestDrain verifies graceful shutdown: a drain past its deadline
// cancels in-flight runs, and a draining server refuses new launches.
func TestDrain(t *testing.T) {
	srv, ts := newTestServer(t, config{workers: 2, queueCap: 4})
	doc := launch(t, ts, runRequest{App: "barnes", Proto: "bar-u", Procs: 8}) // full-size barnes: reliably outlives the drain window

	cancelled := srv.drain(50 * time.Millisecond)
	if len(cancelled) != 1 || cancelled[0] != doc.ID {
		t.Fatalf("drain cancelled %v, want [%s]", cancelled, doc.ID)
	}
	final := waitState(t, ts, doc.ID)
	if final.State != stateCancelled {
		t.Fatalf("state after drain = %s", final.State)
	}
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"app":"jacobi","proto":"bar-u","procs":2,"small":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("launch while draining: %d, want 503", resp.StatusCode)
	}
}

// TestDrainWaitsForCompletion: a drain with headroom lets runs finish.
func TestDrainWaitsForCompletion(t *testing.T) {
	srv, ts := newTestServer(t, config{workers: 2, queueCap: 4})
	doc := launch(t, ts, runRequest{App: "jacobi", Proto: "bar-u", Procs: 2, Small: true})
	if cancelled := srv.drain(2 * time.Minute); len(cancelled) != 0 {
		t.Fatalf("drain cancelled %v, want none", cancelled)
	}
	final := waitState(t, ts, doc.ID)
	if final.State != stateDone {
		t.Fatalf("state after patient drain = %s (error %q)", final.State, final.Error)
	}
}

// TestFaultedRun drives the fault-plan path end to end: injected faults
// show up in the report and the fault-verdict counters.
func TestFaultedRun(t *testing.T) {
	_, ts := newTestServer(t, config{workers: 1, queueCap: 1})
	doc := launch(t, ts, runRequest{
		App: "jacobi", Proto: "bar-u", Procs: 4, Small: true,
		Faults: &faultRequest{Loss: 0.05, Seed: 7},
	})
	final := waitState(t, ts, doc.ID)
	if final.State != stateDone {
		t.Fatalf("faulted run: %s (error %q)", final.State, final.Error)
	}
	code, body := getDoc(t, ts, doc.ID)
	if code != http.StatusOK {
		t.Fatalf("GET: %d", code)
	}
	var full struct {
		Report *core.Report `json:"report"`
	}
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}
	if full.Report.Total.NetDrops == 0 {
		t.Fatal("5% loss injected but the report counts no drops")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	// The metric covers the whole run; the report's NetDrops only the
	// measured window — so assert presence and non-zero, not equality.
	out := buf.String()
	if !strings.Contains(out, `godsm_net_faults_total{class="drop"}`) {
		t.Errorf("/metrics missing the drop-verdict counter:\n%.2000s", out)
	}
	if strings.Contains(out, `godsm_net_faults_total{class="drop"} 0`) {
		t.Error("drop-verdict counter is zero despite injected loss")
	}
}

// TestKVLaunchValidation mirrors dsmrun's kv flag validation at the
// REST surface: every nonsensical traffic parameter is a 400 before any
// run starts.
func TestKVLaunchValidation(t *testing.T) {
	_, ts := newTestServer(t, config{workers: 1, queueCap: 1})
	cases := []struct {
		name string
		body string
	}{
		{"negative ops", `{"app":"kv","proto":"bar-u","kv":{"ops":-1}}`},
		{"negative zipf", `{"app":"kv","proto":"bar-u","kv":{"dist":"zipf=-1"}}`},
		{"unknown dist", `{"app":"kv","proto":"bar-u","kv":{"dist":"pareto"}}`},
		{"write above one", `{"app":"kv","proto":"bar-u","kv":{"write":1.5}}`},
		{"bad mix", `{"app":"kv","proto":"bar-u","kv":{"mix":"reads=1"}}`},
		{"shards below procs", `{"app":"kv","proto":"bar-u","procs":8,"kv":{"shards":4}}`},
		{"locks under bar", `{"app":"kv","proto":"bar-u","kv":{"locks":true}}`},
		{"zero keys", `{"app":"kv","proto":"bar-u","kv":{"keys":-1}}`},
		{"kv params on stencil", `{"app":"jacobi","proto":"bar-u","kv":{"ops":100}}`},
		{"unknown kv field", `{"app":"kv","proto":"bar-u","kv":{"bogus":1}}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestKVLaunchRun drives a kv session end to end through the server:
// custom traffic parameters, completion, a checksummed report, and the
// workload's godsm_kv_* series on GET /metrics.
func TestKVLaunchRun(t *testing.T) {
	_, ts := newTestServer(t, config{workers: 1, queueCap: 2, traceCap: 1 << 14})
	ops := 8000
	doc := launch(t, ts, runRequest{
		App: "kv", Proto: "bar-u", Procs: 4, Small: true, Timeline: true,
		KV: &kvRequest{Ops: &ops, Dist: "zipf=1.2", Mix: "write=0.3,scan=0.05,scanlen=8", Seed: 9},
	})
	final := waitState(t, ts, doc.ID)
	if final.State != stateDone {
		t.Fatalf("final state = %s (error %q)", final.State, final.Error)
	}
	if final.Report == nil || !final.Report.HasChecksum {
		t.Fatal("kv session carries no checksummed report")
	}
	if final.Epochs == 0 {
		t.Fatal("kv session recorded no epochs")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"godsm_kv_ops_total", "godsm_kv_op_virtual_us", "godsm_kv_hot_page_ops"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics is missing %s", want)
		}
	}
}
