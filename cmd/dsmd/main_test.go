package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFlagValidation holds dsmd to the exit-2 convention: a flag set the
// server would misread refuses to start.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-bogus"}},
		{"negative queue", []string{"-max-queued", "-1"}},
		{"zero trace cap", []string{"-trace-cap", "0"}},
		{"negative drain timeout", []string{"-drain-timeout", "-1s"}},
	}
	for _, tc := range cases {
		var out, errb bytes.Buffer
		if code := run(context.Background(), tc.args, &out, &errb); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", tc.name, code, errb.String())
		}
	}
}

// syncBuffer is a bytes.Buffer safe to read while run() writes it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServerLifecycle drives main's whole path in-process: boot on an
// ephemeral port, launch a run over HTTP, scrape /metrics, then deliver
// the signal (ctx cancel) and watch the drain complete with exit 0.
func TestServerLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuffer
	exit := make(chan int, 1)
	go func() {
		exit <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2", "-drain-timeout", "30s"}, &stdout, &stderr)
	}()

	addrRe := regexp.MustCompile(`listening on (http://[^\s]+)`)
	var base string
	for deadline := time.Now().Add(10 * time.Second); ; {
		if m := addrRe.FindStringSubmatch(stdout.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address\nstdout: %s\nstderr: %s", stdout.String(), stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post(base+"/v1/runs", "application/json",
		strings.NewReader(`{"app":"jacobi","proto":"bar-u","procs":2,"small":true,"timeline":true}`))
	if err != nil {
		t.Fatal(err)
	}
	var doc sessionDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("launch: %d", resp.StatusCode)
	}

	// Signal while the run may still be in flight: the drain must let it
	// finish (30s headroom) and exit cleanly.
	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("server did not exit after signal")
	}
	if out := stdout.String(); !strings.Contains(out, "draining") || !strings.Contains(out, "bye") {
		t.Fatalf("shutdown narration missing:\n%s", out)
	}
	if strings.Contains(stdout.String(), "cancelled") {
		t.Fatalf("patient drain cancelled a run:\n%s", stdout.String())
	}
}
