package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"godsm/internal/apps"
	"godsm/internal/core"
	"godsm/internal/kvload"
	"godsm/internal/metrics"
	"godsm/internal/netsim"
	"godsm/internal/sim"
	"godsm/internal/sweep"
	"godsm/internal/trace"
	"godsm/internal/transport"
)

// config sizes a server.
type config struct {
	// workers bounds concurrent simulation runs (DefaultParallel rules).
	workers int
	// queueCap bounds accepted-but-not-started runs; a full queue turns
	// into HTTP 429, not buffering.
	queueCap int
	// traceCap is each session's event-ring size: the replay window a
	// late SSE subscriber receives.
	traceCap int
	// pprofOn mounts net/http/pprof under /debug/pprof.
	pprofOn bool
	// sessionTTL expires finished sessions that many after they finish
	// (0 = keep forever). Queued and running sessions never expire.
	sessionTTL time.Duration
	// maxSessions bounds retained sessions; past it the oldest finished
	// ones are evicted first (0 = unlimited).
	maxSessions int
	// sweepEvery overrides the retention sweep interval (0 = derived
	// from sessionTTL; tests set it directly).
	sweepEvery time.Duration
}

// server multiplexes DSM simulation sessions over a bounded worker pool
// and exposes them over a versioned REST API plus SSE event streams.
type server struct {
	cfg  config
	reg  *metrics.Registry
	pool *sweep.Pool

	mu       sync.Mutex
	sessions map[string]*session
	order    []string // session ids in creation order, for listing
	nextID   int
	draining bool

	activeSessions  *metrics.Gauge
	sseClients      *metrics.Gauge
	sessionsExpired *metrics.Counter

	// sweepStop/sweepDone bracket the retention sweeper's lifetime (nil
	// when retention is off).
	sweepStop chan struct{}
	sweepDone chan struct{}
}

// runRequest is the POST /v1/runs body. Zero values select the
// defaults noted per field.
type runRequest struct {
	App   string `json:"app"`             // required: barnes expl fft jacobi shallow sor swm tomcat kv
	Proto string `json:"proto"`           // required: seq lmw-i lmw-u bar-i bar-u bar-s bar-m
	Procs int    `json:"procs,omitempty"` // default 8 (1 for seq)
	Small bool   `json:"small,omitempty"` // reduced application size
	// Transport selects the backend by internal/transport registry name:
	// "sim" (or empty) keeps the virtual-time simulator; a real backend
	// ("mem", "udp", "tcp") runs the cluster on the wall clock.
	Transport string `json:"transport,omitempty"`
	// Workers, under the simulator, shards the discrete-event kernel
	// across that many goroutines (bit-identical results; -1 selects
	// GOMAXPROCS). Rejected with a real transport.
	Workers int `json:"workers,omitempty"`
	// Timeline attaches the per-epoch statistics history to the report.
	Timeline bool `json:"timeline,omitempty"`
	// PageStats attaches per-page attribution to the report.
	PageStats bool          `json:"page_stats,omitempty"`
	Faults    *faultRequest `json:"faults,omitempty"`
	// KV parameterizes the datastore workload; only legal with app "kv".
	KV *kvRequest `json:"kv,omitempty"`
}

// kvRequest carries the kv workload's traffic parameters, mirroring
// dsmrun's -kv-* flags (see internal/apps.KVConfig). Zero values keep
// the app's default (or -small) configuration; ops and write are
// pointers because 0 is a meaningful setting for both.
type kvRequest struct {
	Ops        *int     `json:"ops,omitempty"`         // total op budget
	Keys       int      `json:"keys,omitempty"`        // key-space size
	Shards     int      `json:"shards,omitempty"`      // hash-shard count
	Streams    int      `json:"streams,omitempty"`     // request streams
	Dist       string   `json:"dist,omitempty"`        // uniform, zipf=S, hotset=FRAC/KEYS
	Mix        string   `json:"mix,omitempty"`         // write=F,scan=F,scanlen=N
	Write      *float64 `json:"write,omitempty"`       // put fraction override
	Epochs     int      `json:"epochs,omitempty"`      // measured epochs
	Seed       uint64   `json:"seed,omitempty"`        // traffic seed
	StatsEvery int      `json:"stats_every,omitempty"` // stats-epoch period
	Locks      bool     `json:"locks,omitempty"`       // per-shard locks (lmw only)
}

// kvApp resolves the kv workload configuration for the request,
// mirroring dsmrun's -kv-* validation. reg, when non-nil, receives the
// workload-level godsm_kv_* series (the server's registry, so they show
// on GET /metrics alongside the engine counters).
func (rr *runRequest) kvApp(proto core.ProtocolKind, reg *metrics.Registry) (*apps.App, error) {
	cfg := apps.KVDefault()
	if rr.Small {
		cfg = apps.KVSmall()
	}
	if k := rr.KV; k != nil {
		if k.Ops != nil {
			if *k.Ops < 0 {
				return nil, fmt.Errorf("kv.ops %d: the op budget cannot be negative", *k.Ops)
			}
			cfg.Ops = *k.Ops
		}
		if k.Keys != 0 {
			cfg.Keys = k.Keys
		}
		if k.Shards != 0 {
			cfg.Shards = k.Shards
		}
		if k.Streams != 0 {
			cfg.Streams = k.Streams
		}
		if k.Dist != "" {
			d, err := kvload.ParseDist(k.Dist)
			if err != nil {
				return nil, fmt.Errorf("kv.dist: %v", err)
			}
			cfg.Dist = d
		}
		if k.Mix != "" {
			m, err := kvload.ParseMix(k.Mix)
			if err != nil {
				return nil, fmt.Errorf("kv.mix: %v", err)
			}
			cfg.Mix = m
		}
		if k.Write != nil {
			if *k.Write < 0 || *k.Write > 1 {
				return nil, fmt.Errorf("kv.write %g: must be a fraction in [0, 1]", *k.Write)
			}
			cfg.Mix.Write = *k.Write
		}
		if k.Epochs != 0 {
			cfg.Measure = k.Epochs
		}
		if k.Seed != 0 {
			cfg.Seed = k.Seed
		}
		if k.StatsEvery != 0 {
			cfg.StatsEvery = k.StatsEvery
		}
		cfg.Locks = k.Locks
	}
	if cfg.Shards < rr.Procs {
		return nil, fmt.Errorf("kv.shards %d: want at least one shard per node (procs %d)", cfg.Shards, rr.Procs)
	}
	if cfg.Locks && proto != core.ProtoLmwI && proto != core.ProtoLmwU && proto != core.ProtoSeq {
		return nil, fmt.Errorf("kv.locks needs a homeless protocol (lmw-i, lmw-u); %v is barrier-only", proto)
	}
	cfg.Metrics = reg
	return apps.KV(cfg)
}

// faultRequest arms deterministic fault injection, mirroring dsmrun's
// fault flags. It doubles as the PATCH /v1/runs/{id}/faults body, where
// crashes are rejected (a crash schedule must be set at launch).
type faultRequest struct {
	Loss    float64 `json:"loss,omitempty"`    // drop fraction of remote packets
	Dup     float64 `json:"dup,omitempty"`     // duplicate fraction
	Reorder float64 `json:"reorder,omitempty"` // delay (reorder) fraction
	// DelayNs bounds the extra latency for reordered packets (0 = 500µs);
	// with Reorder 0 and DelayNs > 0, every packet is delayed.
	DelayNs int64 `json:"delay_ns,omitempty"`
	Seed    int64 `json:"seed,omitempty"` // schedule seed; default 1
	// Crashes schedules crash-stop failures: node N dies at barrier
	// epoch E and, when restart_after is given, rejoins that many
	// epochs later (restart_after 0 restarts in place; omitted means
	// the node never comes back).
	Crashes []crashRequest `json:"crashes,omitempty"`
}

// crashRequest is one crash-stop rule in a faultRequest.
type crashRequest struct {
	Node         int  `json:"node"`
	Epoch        int  `json:"epoch"`
	RestartAfter *int `json:"restart_after,omitempty"`
}

// check validates the knobs that need no cluster context.
func (f *faultRequest) check() error {
	for _, p := range []struct {
		name string
		val  float64
	}{{"loss", f.Loss}, {"dup", f.Dup}, {"reorder", f.Reorder}} {
		if p.val < 0 || p.val > 1 {
			return fmt.Errorf("faults.%s %g: must be a probability in [0, 1]", p.name, p.val)
		}
	}
	if f.DelayNs < 0 {
		return fmt.Errorf("faults.delay_ns %d: extra latency cannot be negative", f.DelayNs)
	}
	return nil
}

// crashRules validates and converts the crash schedule, mirroring
// dsmrun's -crash rules (the same schedules the engine would reject).
func (f *faultRequest) crashRules(procs int, proto core.ProtocolKind) ([]netsim.CrashRule, error) {
	if len(f.Crashes) == 0 {
		return nil, nil
	}
	if proto == core.ProtoSeq {
		return nil, fmt.Errorf("faults.crashes need a DSM protocol; seq has no cluster to crash")
	}
	seen := make(map[int]bool)
	var rules []netsim.CrashRule
	for _, c := range f.Crashes {
		if c.Node == 0 {
			return nil, fmt.Errorf("faults.crashes node 0: node 0 hosts the barrier manager and the reduction root; it cannot crash")
		}
		if c.Node < 1 || c.Node >= procs {
			return nil, fmt.Errorf("faults.crashes node %d: cluster has nodes 0..%d (and node 0 cannot crash)", c.Node, procs-1)
		}
		if seen[c.Node] {
			return nil, fmt.Errorf("faults.crashes node %d appears twice; one rule per node", c.Node)
		}
		seen[c.Node] = true
		if c.Epoch < 1 {
			return nil, fmt.Errorf("faults.crashes epoch %d: the first crashable barrier is epoch 1 (epoch 0 is initialization)", c.Epoch)
		}
		rule := netsim.CrashRule{Node: c.Node, Epoch: c.Epoch, RestartAfter: -1}
		if c.RestartAfter != nil {
			if *c.RestartAfter < 0 {
				return nil, fmt.Errorf("faults.crashes restart_after %d: must be >= 0 (omit the field for a node that never restarts)", *c.RestartAfter)
			}
			rule.RestartAfter = *c.RestartAfter
		}
		rules = append(rules, rule)
	}
	return rules, nil
}

// plan assembles the netsim plan; nil when nothing is armed.
func (f *faultRequest) plan(procs int, proto core.ProtocolKind) (*netsim.FaultPlan, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	crashes, err := f.crashRules(procs, proto)
	if err != nil {
		return nil, err
	}
	if f.Loss == 0 && f.Dup == 0 && f.Reorder == 0 && f.DelayNs == 0 && len(crashes) == 0 {
		return nil, nil
	}
	seed := f.Seed
	if seed == 0 {
		seed = 1
	}
	plan := &netsim.FaultPlan{Seed: seed, Crashes: crashes}
	if f.Loss > 0 || f.Dup > 0 || f.Reorder > 0 || f.DelayNs > 0 {
		reorder := f.Reorder
		if reorder == 0 && f.DelayNs > 0 {
			reorder = 1
		}
		plan.Rules = []netsim.FaultRule{{
			From:    netsim.AnyNode,
			To:      netsim.AnyNode,
			Drop:    f.Loss,
			Dup:     f.Dup,
			Reorder: reorder,
			Delay:   sim.Duration(f.DelayNs),
		}}
	}
	return plan, nil
}

// sessionState is a session's lifecycle phase.
type sessionState string

const (
	stateQueued    sessionState = "queued"
	stateRunning   sessionState = "running"
	stateDone      sessionState = "done"
	stateError     sessionState = "error"
	stateCancelled sessionState = "cancelled"
)

// session is one simulation run owned by the server.
type session struct {
	id     string
	req    runRequest
	bcast  *trace.Broadcaster
	cancel context.CancelFunc
	done   chan struct{} // closed when the run finishes, after report/err are set

	mu       sync.Mutex
	state    sessionState
	report   *core.Report
	err      string
	created  time.Time
	started  time.Time
	finished time.Time
	// net is the run's live network handle (set by core.Config.NetHook
	// once the cluster is assembled); PATCH faults goes through it.
	net *netsim.Net
}

// terminalSince reports whether the session has finished and when.
func (ss *session) terminalSince() (time.Time, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	switch ss.state {
	case stateDone, stateError, stateCancelled:
		return ss.finished, true
	}
	return time.Time{}, false
}

// sessionDoc is the wire form of a session (GET /v1/runs/{id} and the
// list entries, which omit the report).
type sessionDoc struct {
	ID       string       `json:"id"`
	State    sessionState `json:"state"`
	Request  runRequest   `json:"request"`
	Error    string       `json:"error,omitempty"`
	Created  time.Time    `json:"created"`
	Started  *time.Time   `json:"started,omitempty"`
	Finished *time.Time   `json:"finished,omitempty"`
	// Epochs is len(report.timeline.Epochs) when a timeline was recorded.
	Epochs int `json:"epochs,omitempty"`
	// DroppedEvents counts ring evictions: events an SSE replay no longer
	// covers.
	DroppedEvents int64        `json:"dropped_events,omitempty"`
	Report        *core.Report `json:"report,omitempty"`
}

func (ss *session) doc(withReport bool) sessionDoc {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	d := sessionDoc{
		ID:            ss.id,
		State:         ss.state,
		Request:       ss.req,
		Error:         ss.err,
		Created:       ss.created,
		DroppedEvents: ss.bcast.Dropped(),
	}
	if !ss.started.IsZero() {
		t := ss.started
		d.Started = &t
	}
	if !ss.finished.IsZero() {
		t := ss.finished
		d.Finished = &t
	}
	if ss.report != nil && ss.report.Timeline != nil {
		d.Epochs = len(ss.report.Timeline.Epochs)
	}
	if withReport {
		d.Report = ss.report
	}
	return d
}

func newServer(cfg config) *server {
	if cfg.traceCap <= 0 {
		cfg.traceCap = 4096
	}
	reg := metrics.New()
	s := &server{
		cfg:      cfg,
		reg:      reg,
		pool:     sweep.NewPool(cfg.workers, cfg.queueCap, reg),
		sessions: make(map[string]*session),
		activeSessions: reg.Gauge("godsm_dsmd_sessions_active",
			"sessions queued or running"),
		sseClients: reg.Gauge("godsm_dsmd_sse_clients",
			"open SSE event subscriptions"),
		sessionsExpired: reg.Counter("godsm_dsmd_sessions_expired",
			"finished sessions evicted by the retention sweep"),
	}
	if cfg.sessionTTL > 0 || cfg.maxSessions > 0 {
		every := cfg.sweepEvery
		if every <= 0 {
			// A quarter of the TTL keeps expiry within ~25% of the nominal
			// deadline without busy-sweeping long retention windows.
			every = cfg.sessionTTL / 4
			if every <= 0 || every > time.Minute {
				every = time.Minute
			}
			if every < time.Second {
				every = time.Second
			}
		}
		s.sweepStop = make(chan struct{})
		s.sweepDone = make(chan struct{})
		go s.sweepLoop(every)
	}
	return s
}

// sweepLoop runs the retention sweep until drain stops it.
func (s *server) sweepLoop(every time.Duration) {
	defer close(s.sweepDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case now := <-t.C:
			s.sweepExpired(now)
		}
	}
}

// sweepExpired drops finished sessions older than the TTL and, when the
// retention count cap is exceeded, the oldest finished ones beyond it.
// Queued and running sessions are never evicted — the cap can therefore
// be transiently exceeded by live sessions. An expired id simply leaves
// the table: subsequent lookups 404 like any unknown id. Returns the
// number evicted.
func (s *server) sweepExpired(now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	expired := 0
	if s.cfg.sessionTTL > 0 {
		kept := s.order[:0]
		for _, id := range s.order {
			ss := s.sessions[id]
			if fin, terminal := ss.terminalSince(); terminal && now.Sub(fin) > s.cfg.sessionTTL {
				delete(s.sessions, id)
				expired++
				continue
			}
			kept = append(kept, id)
		}
		s.order = kept
	}
	if s.cfg.maxSessions > 0 && len(s.order) > s.cfg.maxSessions {
		over := len(s.order) - s.cfg.maxSessions
		kept := s.order[:0]
		for _, id := range s.order {
			ss := s.sessions[id]
			if _, terminal := ss.terminalSince(); terminal && over > 0 {
				delete(s.sessions, id)
				expired++
				over--
				continue
			}
			kept = append(kept, id)
		}
		s.order = kept
	}
	s.sessionsExpired.Add(int64(expired))
	return expired
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleLaunch)
	mux.HandleFunc("GET /v1/runs", s.handleList)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	mux.HandleFunc("PATCH /v1/runs/{id}/faults", s.handlePatchFaults)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if s.cfg.pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// errorBody is the payload of the uniform /v1 error envelope:
//
//	{"error": {"code": "<stable slug>", "message": "<human text>"}}
//
// Every /v1 handler emits exactly this shape on failure; status codes
// are unchanged from the flat era. The pre-envelope body — a bare
// string under "error" — is deprecated and no longer emitted; clients
// that matched on it should branch on error.code instead.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// httpError emits the /v1 error envelope with a slug derived from the
// status; handlers with a more specific cause use httpErrorCode.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	httpErrorCode(w, code, codeSlug(code), format, args...)
}

// httpErrorCode emits the /v1 error envelope with an explicit code slug.
func httpErrorCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]errorBody{
		"error": {Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

// codeSlug is the default machine-readable code for an HTTP status.
func codeSlug(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusTooManyRequests:
		return "queue_full"
	case http.StatusServiceUnavailable:
		return "unavailable"
	}
	return "internal"
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// validate resolves a run request against the same rules dsmrun enforces
// on its flags: reject what the engine would silently misinterpret. reg
// (which may be nil) receives the kv workload's godsm_kv_* series.
func (rr *runRequest) validate(reg *metrics.Registry) (*apps.App, core.ProtocolKind, *netsim.FaultPlan, error) {
	proto, err := core.ParseProtocol(rr.Proto)
	if err != nil {
		return nil, 0, nil, err
	}
	if rr.Procs == 0 {
		rr.Procs = 8
	}
	if proto == core.ProtoSeq {
		rr.Procs = 1
	}
	if rr.Procs < 1 {
		return nil, 0, nil, fmt.Errorf("procs %d: cluster needs at least 1 node", rr.Procs)
	}
	if rr.Transport != "" {
		e, ok := transport.Lookup(rr.Transport)
		if !ok {
			return nil, 0, nil, fmt.Errorf("transport %q: unknown backend (have %s)",
				rr.Transport, strings.Join(transport.Names(), ", "))
		}
		if e.Virtual {
			rr.Transport = "" // "sim" is the default simulator
		}
	}
	if rr.Transport != "" && proto == core.ProtoSeq {
		return nil, 0, nil, fmt.Errorf("transport %s needs a parallel protocol; seq has no remote traffic", rr.Transport)
	}
	if rr.Workers != 0 && rr.Transport != "" {
		return nil, 0, nil, fmt.Errorf("workers shards the simulated kernel; it cannot be combined with transport %s", rr.Transport)
	}
	var app *apps.App
	if rr.App == "kv" {
		if app, err = rr.kvApp(proto, reg); err != nil {
			return nil, 0, nil, err
		}
	} else {
		if rr.KV != nil {
			return nil, 0, nil, fmt.Errorf("kv parameters only apply to app %q (got app %q)", "kv", rr.App)
		}
		list := apps.All()
		if rr.Small {
			list = apps.Small()
		}
		for _, a := range list {
			if a.Name == rr.App {
				app = a
			}
		}
		if app == nil {
			return nil, 0, nil, fmt.Errorf("unknown application %q (have %s)", rr.App, strings.Join(apps.Names(), ", "))
		}
	}
	if app.Dynamic && (proto == core.ProtoBarS || proto == core.ProtoBarM) {
		return nil, 0, nil, fmt.Errorf("%s has a dynamic sharing pattern; %v would abort (the paper excludes it)", app.Name, proto)
	}
	var plan *netsim.FaultPlan
	if f := rr.Faults; f != nil {
		plan, err = f.plan(rr.Procs, proto)
		if err != nil {
			return nil, 0, nil, err
		}
	}
	return app, proto, plan, nil
}

// handleLaunch admits a run: validate, register the session, and submit
// to the pool. 429 when the pool is saturated, 503 when draining.
func (s *server) handleLaunch(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	app, proto, plan, err := req.validate(s.reg)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	ss := &session{
		req:     req,
		bcast:   trace.NewBroadcaster(s.cfg.traceCap),
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   stateQueued,
		created: time.Now(),
	}
	opts := apps.RunOpts{
		Timeline:      req.Timeline,
		PageStats:     req.PageStats,
		Transport:     req.Transport,
		KernelWorkers: req.Workers,
		Faults:        plan,
		Sinks:         []trace.Sink{ss.bcast},
		Metrics:       s.reg,
		// Capture the cluster's live network handle so PATCH
		// /v1/runs/{id}/faults can swap fault rules mid-run. netsim's
		// mutating entry points lock internally, so the handler may call
		// them from outside the simulation.
		Configure: func(cfg *core.Config) {
			cfg.NetHook = func(n *netsim.Net) {
				ss.mu.Lock()
				ss.net = n
				ss.mu.Unlock()
			}
		},
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		httpErrorCode(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}
	s.nextID++
	ss.id = "r" + strconv.Itoa(s.nextID)
	s.sessions[ss.id] = ss
	s.order = append(s.order, ss.id)
	s.mu.Unlock()

	run := func() error {
		ss.mu.Lock()
		ss.state = stateRunning
		ss.started = time.Now()
		ss.mu.Unlock()
		rep, err := app.RunWithContext(ctx, req.Procs, proto, opts)
		ss.mu.Lock()
		ss.finished = time.Now()
		ss.report = rep
		switch {
		case err == nil:
			ss.state = stateDone
		case errors.Is(err, context.Canceled):
			ss.state = stateCancelled
			ss.err = "cancelled"
		default:
			ss.state = stateError
			ss.err = err.Error()
		}
		ss.mu.Unlock()
		return nil // run outcome lives on the session, not the pool
	}
	finish := func(poolErr error) {
		if poolErr != nil { // a panic the pool contained
			ss.mu.Lock()
			ss.state = stateError
			ss.err = poolErr.Error()
			ss.finished = time.Now()
			ss.mu.Unlock()
		}
		ss.bcast.Close()
		close(ss.done)
		s.activeSessions.Dec()
		cancel()
	}
	s.activeSessions.Inc()
	if err := s.pool.TrySubmit(run, finish); err != nil {
		s.activeSessions.Dec()
		s.mu.Lock()
		delete(s.sessions, ss.id)
		for i, id := range s.order {
			if id == ss.id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		cancel()
		code := http.StatusTooManyRequests
		if errors.Is(err, sweep.ErrPoolClosed) {
			code = http.StatusServiceUnavailable
		}
		httpError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, ss.doc(false))
}

func (s *server) lookup(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	byID := make(map[string]*session, len(s.sessions))
	for id, ss := range s.sessions {
		byID[id] = ss
	}
	s.mu.Unlock()
	docs := make([]sessionDoc, 0, len(ids))
	for _, id := range ids {
		if ss := byID[id]; ss != nil {
			docs = append(docs, ss.doc(false))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": docs})
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	ss := s.lookup(r.PathValue("id"))
	if ss == nil {
		httpError(w, http.StatusNotFound, "no such run %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, ss.doc(true))
}

// handleCancel aborts a queued or running session. Cancelling a finished
// session is a no-op that reports its final state.
func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	ss := s.lookup(r.PathValue("id"))
	if ss == nil {
		httpError(w, http.StatusNotFound, "no such run %q", r.PathValue("id"))
		return
	}
	ss.cancel()
	writeJSON(w, http.StatusAccepted, ss.doc(false))
}

// handlePatchFaults swaps a running session's fault rules live. The body
// is a faultRequest; an all-zero body clears every rule. Crash rules
// cannot be added mid-run (the checkpoint machinery must arm at launch),
// and the session must have been launched with a fault plan — both are
// 409s from netsim. 404 unknown id, 400 invalid knobs, 409 when the
// session is not running (or the cluster is not assembled yet).
func (s *server) handlePatchFaults(w http.ResponseWriter, r *http.Request) {
	ss := s.lookup(r.PathValue("id"))
	if ss == nil {
		httpError(w, http.StatusNotFound, "no such run %q", r.PathValue("id"))
		return
	}
	var f faultRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	proto, err := core.ParseProtocol(ss.req.Proto) // validated at launch
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	plan, err := f.plan(ss.req.Procs, proto)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if plan == nil {
		// "Clear every rule" is a valid swap; SwapFaults wants a plan.
		plan = &netsim.FaultPlan{Seed: 1}
	}
	ss.mu.Lock()
	state, net := ss.state, ss.net
	ss.mu.Unlock()
	if state != stateRunning || net == nil {
		httpError(w, http.StatusConflict, "session %s is %s; faults can only be toggled on a running session", ss.id, state)
		return
	}
	if err := net.SwapFaults(plan); err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ss.doc(false))
}

// sseEvent is the SSE data payload for one trace event.
type sseEvent struct {
	T    sim.Time `json:"t"`
	Node int      `json:"node"`
	Kind string   `json:"kind"`
	Page int      `json:"page"`
	Arg  int64    `json:"arg"`
}

// handleEvents streams a session's trace events as Server-Sent Events:
// the ring replay first, then live events until the run finishes (a
// final "done" event carries the session document) or the client goes
// away. ?kinds=bar-release,segv narrows to the named kinds; ?buffer=N
// sizes the subscription (default 1024) — a client that cannot keep up
// loses events rather than stalling the engine, and the count lost is
// reported on the done event.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	ss := s.lookup(r.PathValue("id"))
	if ss == nil {
		httpError(w, http.StatusNotFound, "no such run %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	var kinds []trace.Kind
	if q := r.URL.Query().Get("kinds"); q != "" {
		for _, name := range strings.Split(q, ",") {
			k, err := trace.ParseKind(strings.TrimSpace(name))
			if err != nil {
				httpError(w, http.StatusBadRequest, "%v", err)
				return
			}
			kinds = append(kinds, k)
		}
	}
	buffer := 1024
	if q := r.URL.Query().Get("buffer"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "buffer %q: want a positive integer", q)
			return
		}
		buffer = n
	}

	sub := ss.bcast.Subscribe(buffer, kinds...)
	defer ss.bcast.Unsubscribe(sub)
	s.sseClients.Inc()
	defer s.sseClients.Dec()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	enc := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-sub.C():
			if !ok {
				doc := ss.doc(false)
				doc.DroppedEvents += sub.Dropped() // ring evictions + this client's losses
				enc("done", doc)
				return
			}
			if !enc("trace", sseEvent{T: e.T, Node: e.Node, Kind: e.Kind.String(), Page: e.Page, Arg: e.Arg}) {
				return
			}
		}
	}
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WritePrometheus(w)
}

// drain stops admissions, waits up to timeout for in-flight sessions,
// cancels whatever is still running, and shuts the pool down. Returns
// the ids of sessions that had to be cancelled.
func (s *server) drain(timeout time.Duration) []string {
	if s.sweepStop != nil {
		close(s.sweepStop)
		<-s.sweepDone
		s.sweepStop = nil
	}
	s.mu.Lock()
	s.draining = true
	open := make([]*session, 0, len(s.sessions))
	for _, ss := range s.sessions {
		open = append(open, ss)
	}
	s.mu.Unlock()

	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	expired := false
	var cancelled []string
	for _, ss := range open {
		if !expired {
			select {
			case <-ss.done:
				continue
			case <-deadline.C:
				expired = true
			}
		}
		// Past the deadline: abort this and every remaining session, then
		// wait — a cancelled run stops at the next simulation event.
		ss.cancel()
		select {
		case <-ss.done:
		default:
			cancelled = append(cancelled, ss.id)
			<-ss.done
		}
	}
	s.pool.Close()
	sort.Strings(cancelled)
	return cancelled
}
