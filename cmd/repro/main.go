// Command repro regenerates the tables and figures of Keleher, "Update
// Protocols and Iterative Scientific Applications" (IPPS'98) on the
// simulated cluster.
//
// Usage:
//
//	repro [flags] <experiment>
//
// Experiments: apps, table1, fig2, fig3, fig4, summary, adaptive,
// ablation-stress, ablation-scale, ablation-home, chaos-loss, recovery,
// scaling, datastore, conform, parity, bench, all.
//
// SIGINT/SIGTERM mid-sweep cancels cleanly: no new simulations start and
// the command exits with the cancellation error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"godsm/internal/repro"
)

func main() {
	procs := flag.Int("procs", 8, "cluster size (the paper's testbed has 8 nodes)")
	small := flag.Bool("small", false, "use reduced application sizes (quick check)")
	jsonl := flag.Bool("jsonl", false, "emit machine-readable JSONL records instead of rendered tables")
	parallel := flag.Int("parallel", 1, "fan independent simulations across N workers (0 = GOMAXPROCS); output stays byte-identical to serial")
	benchOut := flag.String("bench-out", "BENCH_sweep.json", "output path for the bench experiment")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: repro [flags] <experiment>\n\n")
		fmt.Fprintf(os.Stderr, "experiments: apps table1 fig2 fig3 fig4 summary adaptive ablation-stress ablation-scale ablation-home ablation-pagesize chaos-loss recovery scaling datastore conform parity bench all\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	r := &repro.Runner{Procs: *procs, Small: *small, Parallel: *parallel}
	want := flag.Arg(0)

	// SIGINT/SIGTERM cancel the sweep: workers stop claiming simulations
	// and the command exits with the cancellation error.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if want == "conform" {
		out, err := r.RenderConformContext(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(out)
		return
	}

	// Like conform, parity runs outside the report cache: its real-
	// transport runs are wall-clock and must not be cached or warmed.
	if want == "parity" {
		out, err := r.RenderParityContext(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(out)
		return
	}

	if want == "bench" {
		f, err := os.Create(*benchOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := r.WriteBenchJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchOut)
		return
	}

	// Warm the report cache from parallel workers; rendering below then
	// reads only the cache, keeping output bytes identical to serial mode.
	if *parallel != 1 {
		var exps []string
		if want != "all" {
			exps = []string{want}
		}
		if err := r.PrefetchContext(ctx, exps...); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *jsonl {
		var exps []string
		if want != "all" {
			exps = []string{want}
		}
		if err := r.ExportJSONL(os.Stdout, exps); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	type experiment struct {
		name   string
		render func() (string, error)
	}
	exps := []experiment{
		{"apps", r.RenderAppsTable},
		{"table1", r.RenderTable1},
		{"fig2", r.RenderFigure2},
		{"fig3", r.RenderFigure3},
		{"fig4", r.RenderFigure4},
		{"summary", r.RenderSummary},
		{"adaptive", r.RenderAdaptive},
		{"ablation-stress", r.RenderAblationStress},
		{"ablation-scale", r.RenderAblationScale},
		{"ablation-home", r.RenderAblationHome},
		{"ablation-pagesize", r.RenderAblationPageSize},
		{"chaos-loss", r.RenderLossSweep},
		{"recovery", r.RenderRecovery},
		{"scaling", r.RenderScaling},
		{"datastore", r.RenderDatastore},
	}
	ran := false
	for _, e := range exps {
		if e.name == want || want == "all" {
			out, err := e.render()
			if err != nil {
				fmt.Fprintf(os.Stderr, "repro: %s: %v\n", e.name, err)
				os.Exit(1)
			}
			fmt.Println(out)
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "repro: unknown experiment %q\n", want)
		flag.Usage()
		os.Exit(2)
	}
}
