// Command repro regenerates the tables and figures of Keleher, "Update
// Protocols and Iterative Scientific Applications" (IPPS'98) on the
// simulated cluster.
//
// Usage:
//
//	repro [flags] <experiment>
//
// Experiments: apps, table1, fig2, fig3, fig4, summary,
// ablation-stress, ablation-scale, ablation-home, chaos-loss, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"godsm/internal/repro"
)

func main() {
	procs := flag.Int("procs", 8, "cluster size (the paper's testbed has 8 nodes)")
	small := flag.Bool("small", false, "use reduced application sizes (quick check)")
	jsonl := flag.Bool("jsonl", false, "emit machine-readable JSONL records instead of rendered tables")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: repro [flags] <experiment>\n\n")
		fmt.Fprintf(os.Stderr, "experiments: apps table1 fig2 fig3 fig4 summary ablation-stress ablation-scale ablation-home ablation-pagesize chaos-loss all\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	r := &repro.Runner{Procs: *procs, Small: *small}
	want := flag.Arg(0)

	if *jsonl {
		var exps []string
		if want != "all" {
			exps = []string{want}
		}
		if err := r.ExportJSONL(os.Stdout, exps); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	type experiment struct {
		name   string
		render func() (string, error)
	}
	exps := []experiment{
		{"apps", r.RenderAppsTable},
		{"table1", r.RenderTable1},
		{"fig2", r.RenderFigure2},
		{"fig3", r.RenderFigure3},
		{"fig4", r.RenderFigure4},
		{"summary", r.RenderSummary},
		{"ablation-stress", r.RenderAblationStress},
		{"ablation-scale", r.RenderAblationScale},
		{"ablation-home", r.RenderAblationHome},
		{"ablation-pagesize", r.RenderAblationPageSize},
		{"chaos-loss", r.RenderLossSweep},
	}
	ran := false
	for _, e := range exps {
		if e.name == want || want == "all" {
			out, err := e.render()
			if err != nil {
				fmt.Fprintf(os.Stderr, "repro: %s: %v\n", e.name, err)
				os.Exit(1)
			}
			fmt.Println(out)
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "repro: unknown experiment %q\n", want)
		flag.Usage()
		os.Exit(2)
	}
}
